"""Unit tests for the observability primitives (``repro.obs``): fixed-bucket
latency histograms, per-request traces, the slow-request ring buffer, and
the Prometheus-style text exposition."""

import threading
import urllib.error
import urllib.request

import pytest

from repro.dynfo.requests import Insert
from repro.obs import (
    BUCKET_BOUNDS_US,
    LatencyHistogram,
    SlowLog,
    Trace,
    new_trace_id,
    render_prometheus,
    start_metrics_server,
)
from repro.obs.trace import render_trace
from repro.service import DynFOService, ServiceClient


# -- histograms ------------------------------------------------------------


def test_bucket_ladder_shape():
    assert BUCKET_BOUNDS_US[0] == 1
    assert BUCKET_BOUNDS_US[-1] == 50_000_000  # 50 s
    assert list(BUCKET_BOUNDS_US) == sorted(BUCKET_BOUNDS_US)
    assert len(BUCKET_BOUNDS_US) == 24  # 1-2-5 ladder over 8 decades


def test_empty_histogram_snapshot_is_zeroes():
    snap = LatencyHistogram().snapshot()
    assert snap == {
        "count": 0,
        "avg_us": 0.0,
        "p50_us": 0.0,
        "p95_us": 0.0,
        "p99_us": 0.0,
        "max_us": 0.0,
    }


def test_percentiles_land_in_covering_buckets():
    hist = LatencyHistogram()
    for _ in range(99):
        hist.record(3_000)  # 3 us -> bucket (2, 5]
    hist.record(40_000_000)  # one 40 ms outlier
    snap = hist.snapshot()
    assert snap["count"] == 100
    assert snap["p50_us"] == 5  # upper bound of the covering bucket
    assert snap["p95_us"] == 5
    assert snap["p99_us"] == 5
    assert snap["max_us"] == 40_000.0


def test_percentile_clamps_to_observed_max():
    hist = LatencyHistogram()
    hist.record(1_200)  # 1.2 us -> bucket (1, 2], bound 2 us
    assert hist.percentile_us(0.5) == pytest.approx(1.2)


def test_overflow_bucket_reports_max():
    hist = LatencyHistogram()
    hist.record(120 * 10**9)  # 2 minutes, past the 50 s ladder
    assert hist.percentile_us(0.99) == pytest.approx(120e6, rel=1e-3)
    buckets = hist.cumulative_buckets()
    assert buckets[-1] == (float("inf"), 1)
    assert all(count == 0 for _, count in buckets[:-1])


def test_cumulative_buckets_are_monotone_and_complete():
    hist = LatencyHistogram()
    for ns in (500, 1_500, 80_000, 3_000_000):
        hist.record(ns)
    buckets = hist.cumulative_buckets()
    counts = [count for _, count in buckets]
    assert counts == sorted(counts)
    assert buckets[-1] == (float("inf"), 4)
    assert len(buckets) == len(BUCKET_BOUNDS_US) + 1


# -- traces ----------------------------------------------------------------


def test_trace_ids_are_unique_hex():
    ids = {new_trace_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)


def test_trace_to_wire_is_relative_and_nested():
    trace = Trace("apply", session="s", detailed=True)
    origin = trace.origin_ns
    span = trace.record("engine_apply", origin + 1_000, 5_000, meta={"request": "x"})
    span.add_child("eval:R", origin + 2_000, 1_000, meta={"kind": "definition"})
    wire = trace.to_wire(total_ns=10_000)
    assert wire["op"] == "apply" and wire["session"] == "s"
    assert wire["total_us"] == 10.0
    (parent,) = wire["spans"]
    assert parent["name"] == "engine_apply"
    assert parent["start_us"] == 1.0 and parent["duration_us"] == 5.0
    (child,) = parent["spans"]
    assert child["name"] == "eval:R" and child["meta"] == {"kind": "definition"}
    assert "spans_dropped" not in wire


def test_trace_caps_span_count():
    trace = Trace("apply")
    for i in range(Trace.MAX_SPANS + 7):
        trace.record("queue_wait", trace.origin_ns, i)
    wire = trace.to_wire(total_ns=0)
    assert len(wire["spans"]) == Trace.MAX_SPANS
    assert wire["spans_dropped"] == 7


def test_render_trace_is_readable():
    trace = Trace("query", session="chat")
    trace.record("eval", trace.origin_ns + 500, 2_500)
    text = render_trace(trace.to_wire(total_ns=3_000))
    assert text.splitlines()[0].startswith(f"trace {trace.trace_id} :: query on 'chat'")
    assert "eval" in text and "2.5 us" in text


# -- slow log --------------------------------------------------------------


def test_slowlog_threshold_and_ring():
    log = SlowLog(capacity=2, threshold_ms=1.0)
    fast = Trace("ask")
    assert not log.observe(fast, total_ns=500_000, ok=True)  # 0.5 ms: fast
    for index in range(3):
        trace = Trace("query", session=f"s{index}")
        assert log.observe(trace, total_ns=5_000_000, ok=True, plan="Scan(E)")
    snap = log.snapshot()
    assert snap["threshold_ms"] == 1.0 and snap["capacity"] == 2
    assert snap["dropped"] == 1  # the ring evicted the oldest
    assert [entry["session"] for entry in snap["entries"]] == ["s2", "s1"]
    assert all(entry["plan"] == "Scan(E)" for entry in snap["entries"])
    assert snap["entries"][0]["duration_ms"] == 5.0


def test_slowlog_limit_and_error_entries():
    log = SlowLog(capacity=8, threshold_ms=0.0)
    log.observe(Trace("apply"), total_ns=1, ok=False, error="boom")
    log.observe(Trace("apply"), total_ns=1, ok=True)
    snap = log.snapshot(limit=1)
    assert len(snap["entries"]) == 1 and snap["entries"][0]["ok"] is True
    full = log.snapshot()
    assert full["entries"][1]["error"] == "boom"


def test_slowlog_rejects_bad_configuration():
    with pytest.raises(ValueError):
        SlowLog(capacity=0)
    with pytest.raises(ValueError):
        SlowLog(threshold_ms=-1.0)


def test_slowlog_is_thread_safe():
    log = SlowLog(capacity=16, threshold_ms=0.0)

    def hammer():
        for _ in range(50):
            log.observe(Trace("ask"), total_ns=1_000, ok=True)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snap = log.snapshot()
    assert len(snap["entries"]) == 16
    assert snap["dropped"] == 4 * 50 - 16


# -- prometheus exposition -------------------------------------------------


def _tiny_service() -> DynFOService:
    service = DynFOService(read_workers=2)
    client = ServiceClient(service)
    client.open("m", "reach_u", n=6)
    client.apply("m", Insert("E", 0, 1))
    client.ask("m", "reach", s=0, t=1)
    return service


def test_render_prometheus_carries_counters_and_histograms():
    service = _tiny_service()
    try:
        body = render_prometheus(service)
    finally:
        service.close(snapshot=False)
    assert "dynfo_service_requests_total" in body
    assert 'dynfo_session_writes_total{session="m"} 1' in body
    assert '_bucket{le="+Inf",session="m"}' in body
    read_lines = [
        line
        for line in body.splitlines()
        if line.startswith("dynfo_read_latency_seconds_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in read_lines]
    assert counts == sorted(counts) and counts[-1] >= 1  # cumulative


def test_metrics_http_endpoint_serves_and_404s():
    service = _tiny_service()
    server = start_metrics_server(service, port=0)
    host, port = server.server_address[:2]
    try:
        with urllib.request.urlopen(f"http://{host}:{port}/metrics") as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            body = response.read().decode()
        assert "dynfo_uptime_seconds" in body
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"http://{host}:{port}/nope")
        assert caught.value.code == 404
    finally:
        server.shutdown()
        server.server_close()
        service.close(snapshot=False)
