"""Proposition 4.7: multiplication under single-bit changes."""

import pytest

from repro.baselines import bits_to_int
from repro.dynfo import DynFOEngine, ReplayHarness
from repro.dynfo.oracles import product_checker
from repro.logic import Structure, Vocabulary, naive_query
from repro.programs import make_multiplication_program
from repro.programs.multiplication import plus_formula
from repro.workloads import number_bit_script


@pytest.mark.parametrize("seed,n", [(0, 12), (1, 16), (2, 14)])
def test_randomized_against_bignum(seed, n):
    harness = ReplayHarness(
        make_multiplication_program(), n, checkers=[product_checker()]
    )
    harness.run(number_bit_script(n, 120, seed))


def test_hand_case():
    engine = DynFOEngine(make_multiplication_program(), 16)
    # x = 5 (101), y = 3 (11)
    for p in (0, 2):
        engine.insert("X", p)
    for p in (0, 1):
        engine.insert("Y", p)
    assert bits_to_int(engine.query("product_bits")) == 15
    engine.delete("X", 2)  # x = 1
    assert bits_to_int(engine.query("product_bits")) == 3
    engine.delete("Y", 0)  # y = 2
    assert bits_to_int(engine.query("product_bits")) == 2
    engine.delete("Y", 1)  # y = 0
    assert bits_to_int(engine.query("product_bits")) == 0


def test_noop_requests():
    engine = DynFOEngine(make_multiplication_program(), 12)
    engine.insert("X", 1)
    engine.insert("Y", 2)
    product = bits_to_int(engine.query("product_bits"))
    engine.insert("X", 1)  # already set
    engine.delete("Y", 3)  # already clear
    assert bits_to_int(engine.query("product_bits")) == product


def test_plus_relation_matches_bit_formula():
    """The precomputed PlusR equals its pure-BIT first-order definition,
    keeping the program inside plain Dyn-FO."""
    n = 8
    program = make_multiplication_program()
    initial = program.initial(n)
    scratch = Structure(Vocabulary.parse("Z^1"), n)
    derived = naive_query(plus_formula(), scratch, ("x", "y", "z"))
    assert derived == initial.relation("PlusR")
