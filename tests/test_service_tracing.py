"""Service-level tests for the tracing/observability layer: span trees on
traced requests, latency histograms in ``stats``, the slow-request log with
rendered plans, and the CLI surfaces (``client trace`` / ``client slowlog``
/ ``serve --metrics-port``)."""

import json
import time

import pytest

from repro.cli import main as cli_main
from repro.dynfo.engine import BACKENDS
from repro.dynfo.requests import Insert
from repro.service import DynFOService, ServiceClient


def make_service(**kwargs) -> DynFOService:
    kwargs.setdefault("read_workers", 4)
    return DynFOService(**kwargs)


def slow_backend(delay: float):
    """Every evaluation sleeps: requests through it reliably cross a small
    slow-log threshold."""

    def factory(structure, params):
        time.sleep(delay)
        return BACKENDS["relational"](structure, params)

    return factory


def _span_names(trace: dict) -> list[str]:
    return [span["name"] for span in trace["spans"]]


# -- span trees ------------------------------------------------------------


def test_traced_apply_covers_queue_to_fsync(tmp_path):
    service = make_service(data_dir=tmp_path)
    try:
        client = ServiceClient(service)
        client.open("t", "reach_u", n=8)
        result, trace = client.call_traced(
            {
                "op": "apply",
                "session": "t",
                "request": {"op": "ins", "rel": "E", "tup": [0, 1]},
            }
        )
        assert result["applied"] == 1
        assert trace["op"] == "apply" and trace["session"] == "t"
        assert trace["total_us"] > 0
        names = _span_names(trace)
        # the write pipeline end to end: admission queue -> exclusive lock
        # -> engine -> WAL append -> group fsync
        for expected in (
            "queue_wait",
            "writer_lock_wait",
            "engine_apply",
            "journal_append",
            "journal_fsync",
        ):
            assert expected in names, f"missing span {expected!r} in {names}"
        (apply_span,) = [s for s in trace["spans"] if s["name"] == "engine_apply"]
        assert apply_span["meta"]["request"] == "ins(E, 0, 1)"
        children = apply_span.get("spans") or []
        assert children, "detailed trace should carry per-rule eval children"
        assert all(child["name"].startswith("eval:") for child in children)
        assert {child["meta"]["kind"] for child in children} <= {
            "temporary",
            "definition",
        }
        (fsync,) = [s for s in trace["spans"] if s["name"] == "journal_fsync"]
        assert fsync["meta"]["batch_size"] == 1
    finally:
        service.close(snapshot=False)


def test_traced_read_covers_worker_lock_eval():
    service = make_service()
    try:
        client = ServiceClient(service)
        client.open("r", "reach_u", n=8)
        client.apply("r", Insert("E", 0, 1))
        result, trace = client.call_traced(
            {"op": "ask", "session": "r", "name": "reach", "params": {"s": 0, "t": 1}}
        )
        assert result is True
        names = _span_names(trace)
        for expected in ("worker_wait", "read_lock_wait", "eval"):
            assert expected in names, f"missing span {expected!r} in {names}"
        # spans lie within the request on a shared relative axis
        for span in trace["spans"]:
            assert span["start_us"] >= 0
            assert span["duration_us"] >= 0
    finally:
        service.close(snapshot=False)


def test_untraced_requests_carry_no_trace_field(tmp_path):
    service = make_service(data_dir=tmp_path)
    try:
        client = ServiceClient(service)
        client.open("u", "reach_u", n=8)
        response = client.call(
            {
                "op": "apply",
                "session": "u",
                "request": {"op": "ins", "rel": "E", "tup": [0, 1]},
            }
        )
        assert response["ok"] and "trace" not in response
    finally:
        service.close(snapshot=False)


def test_traced_script_shares_one_trace_and_caps_spans():
    service = make_service()
    try:
        client = ServiceClient(service)
        client.open("s", "reach_u", n=8)
        script = [
            {"op": "ins", "rel": "E", "tup": [i % 7, (i + 1) % 7]} for i in range(5)
        ]
        result, trace = client.call_traced(
            {"op": "apply_script", "session": "s", "script": script}
        )
        assert result["applied"] == 5
        names = _span_names(trace)
        assert names.count("engine_apply") == 5
        assert len(trace["spans"]) <= 512
    finally:
        service.close(snapshot=False)


# -- stats histograms ------------------------------------------------------


def test_stats_exposes_latency_percentiles():
    service = make_service()
    try:
        client = ServiceClient(service)
        client.open("h", "reach_u", n=8)
        for i in range(4):
            client.apply("h", Insert("E", i, i + 1))
        for _ in range(3):
            client.ask("h", "reach", s=0, t=4)
        latency = client.stats("h")["h"]["latency"]
        assert set(latency) == {
            "read_latency",
            "write_latency",
            "queue_wait",
            "batch_commit",
            "fsync",
        }
        for name in ("read_latency", "write_latency", "queue_wait", "batch_commit"):
            snap = latency[name]
            assert snap["count"] >= 1, name
            assert 0 < snap["p50_us"] <= snap["p95_us"] <= snap["p99_us"], name
            assert snap["p99_us"] <= snap["max_us"] or snap["p99_us"] == pytest.approx(
                snap["max_us"], rel=0.5
            )
        assert latency["fsync"]["count"] == 0  # in-memory session: no journal
        assert latency["write_latency"]["count"] == 4
        assert latency["read_latency"]["count"] == 3
    finally:
        service.close(snapshot=False)


def test_service_stats_carry_slowlog_threshold_and_slow_count():
    service = make_service(slowlog_ms=0.0)
    try:
        client = ServiceClient(service)
        client.open("x", "reach_u", n=6)
        client.apply("x", Insert("E", 0, 1))
        stats = client.stats()
        assert stats["service"]["slowlog_threshold_ms"] == 0.0
        assert stats["service"]["slow_requests"] >= 1
    finally:
        service.close(snapshot=False)


# -- slow log --------------------------------------------------------------


def test_slowlog_captures_slow_write_with_plan_and_spans():
    service = make_service(slowlog_ms=5.0)
    try:
        client = ServiceClient(service)
        service.sessions.open("lag", "reach_u", n=6, backend=slow_backend(0.01))
        client.apply("lag", Insert("E", 0, 1))
        entries = client.slowlog()["entries"]
        assert entries, "a 10ms-per-eval write must cross the 5ms threshold"
        entry = entries[0]
        assert entry["op"] == "apply" and entry["session"] == "lag"
        assert entry["duration_ms"] >= 5.0
        assert entry["ok"] is True
        # the skeleton trace is always on, so the entry explains itself
        span_names = [span["name"] for span in entry["spans"]]
        assert "engine_apply" in span_names
        # ... and carries the offending rule's compiled plan
        assert "ins(E" in entry["plan"]
        assert entry["plan"].strip()
    finally:
        service.close(snapshot=False)


def test_slowlog_wire_op_filters_by_session_and_limit():
    service = make_service(slowlog_ms=0.0)
    try:
        client = ServiceClient(service)
        client.open("a", "reach_u", n=6)
        client.open("b", "reach_u", n=6)
        client.apply("a", Insert("E", 0, 1))
        client.apply("b", Insert("E", 1, 2))
        only_a = client.slowlog(session="a")
        assert only_a["entries"]
        assert all(entry["session"] == "a" for entry in only_a["entries"])
        limited = client.slowlog(limit=1)
        assert len(limited["entries"]) == 1
        everything = client.slowlog()
        assert len(everything["entries"]) > 1
    finally:
        service.close(snapshot=False)


def test_slowlog_records_failed_requests_with_error():
    service = make_service(slowlog_ms=0.0)
    try:
        client = ServiceClient(service)
        client.open("e", "reach_u", n=4)
        response = client.call(
            {"op": "ask", "session": "e", "name": "no_such_query", "params": {}}
        )
        assert not response["ok"]
        failed = [
            entry for entry in client.slowlog()["entries"] if entry["ok"] is False
        ]
        assert failed and "no_such_query" in failed[0]["error"]
    finally:
        service.close(snapshot=False)


# -- CLI surfaces ----------------------------------------------------------


@pytest.fixture
def tcp_server():
    from repro.service import DynFOServer

    server = DynFOServer(port=0, service=make_service(slowlog_ms=0.0))
    server.serve_in_background()
    yield server
    server.stop(snapshot=False)


def test_cli_trace_prints_result_and_span_tree(tcp_server, capsys):
    port = str(tcp_server.port)
    assert cli_main(["client", "--port", port, "open", "chat", "reach_u", "8"]) == 0
    capsys.readouterr()
    assert cli_main(["client", "--port", port, "trace", "ins", "chat", "E", "0", "1"]) == 0
    out = capsys.readouterr().out
    assert '"applied": 1' in out
    assert "trace " in out and ":: apply on 'chat'" in out
    assert "engine_apply" in out and "eval:" in out
    assert cli_main(
        ["client", "--port", port, "trace", "ask", "chat", "reach", "s=0", "t=1"]
    ) == 0
    out = capsys.readouterr().out
    assert "true" in out and "eval" in out


def test_cli_trace_rejects_untraceable_actions(tcp_server):
    port = str(tcp_server.port)
    with pytest.raises(SystemExit):
        cli_main(["client", "--port", port, "trace", "stats"])


def test_cli_slowlog_prints_entries(tcp_server, capsys):
    port = str(tcp_server.port)
    assert cli_main(["client", "--port", port, "open", "chat", "reach_u", "8"]) == 0
    assert cli_main(["client", "--port", port, "ins", "chat", "E", "0", "1"]) == 0
    capsys.readouterr()
    assert cli_main(["client", "--port", port, "slowlog", "chat"]) == 0
    out = capsys.readouterr().out
    assert "slow request(s) past 0.0ms" in out
    lines = [line for line in out.splitlines() if line.startswith("{")]
    assert lines and all(json.loads(line)["session"] == "chat" for line in lines)


def test_cli_serve_exposes_metrics_port(tmp_path):
    import threading
    import urllib.request

    from repro.obs import start_metrics_server
    from repro.service import DynFOServer

    # the same wiring `repro serve --metrics-port` performs, in-process
    service = make_service()
    client = ServiceClient(service)
    client.open("m", "reach_u", n=6)
    client.apply("m", Insert("E", 0, 1))
    server = DynFOServer(port=0, service=service)
    server.serve_in_background()
    metrics_server = start_metrics_server(service, port=0)
    try:
        host, port = metrics_server.server_address[:2]
        body = urllib.request.urlopen(f"http://{host}:{port}/metrics").read().decode()
        assert 'dynfo_session_writes_total{session="m"} 1' in body
        assert "dynfo_write_latency_seconds_bucket" in body
        assert threading.active_count() >= 1
    finally:
        metrics_server.shutdown()
        metrics_server.server_close()
        server.stop(snapshot=False)
