"""Hypothesis strategies for random formulas and structures.

Used by the property tests that pin the three evaluators to each other and
the parser to the printer.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.logic import (
    And,
    Atom,
    Bit,
    Const,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Le,
    Lit,
    Lt,
    Not,
    Or,
    Structure,
    Vocabulary,
)

VOCAB = Vocabulary.parse("E^2, U^1, s, t")
VARS = ("x", "y", "z", "u", "v")
UNIVERSE = 4  # keep the naive evaluator honest but fast


def terms(
    max_lit: int = UNIVERSE, extra_consts: tuple[str, ...] = ()
) -> st.SearchStrategy:
    names = ("s", "t", "min", "max") + tuple(extra_consts)
    return st.one_of(
        st.sampled_from(VARS).map(lambda name: name),
        st.sampled_from(names).map(Const),
        st.integers(0, max_lit - 1).map(Lit),
    )


def _leaves(extra_consts: tuple[str, ...] = ()) -> st.SearchStrategy:
    term = terms(extra_consts=extra_consts)
    return st.one_of(
        st.builds(lambda a, b: Atom("E", (a, b)), term, term),
        st.builds(lambda a: Atom("U", (a,)), term),
        st.builds(Eq, term, term),
        st.builds(Le, term, term),
        st.builds(Lt, term, term),
        st.builds(Bit, term, term),
    )


def formulas(
    max_depth: int = 4, extra_consts: tuple[str, ...] = ()
) -> st.SearchStrategy:
    """Random formulas; free variables are always within VARS.

    ``extra_consts`` adds symbolic constants beyond the vocabulary's —
    e.g. update-parameter names resolved via the evaluators' ``params``
    mapping rather than the structure."""

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        quantified = st.builds(
            lambda ctor, names, body: ctor(tuple(names), body),
            st.sampled_from([Exists, Forall]),
            st.lists(st.sampled_from(VARS), min_size=1, max_size=2, unique=True),
            children,
        )
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(Implies, children, children),
            st.builds(Iff, children, children),
            quantified,
        )

    return st.recursive(_leaves(extra_consts), extend, max_leaves=8)


@st.composite
def structures(draw, vocabulary: Vocabulary = VOCAB, n: int = UNIVERSE):
    structure = Structure(vocabulary, n)
    for rel in vocabulary:
        rows = draw(
            st.sets(
                st.tuples(*([st.integers(0, n - 1)] * rel.arity)),
                max_size=n ** rel.arity,
            )
        )
        structure.set_relation(rel.name, rows)
    for name in vocabulary.constant_names():
        structure.set_constant(name, draw(st.integers(0, n - 1)))
    return structure
