"""Theorem 4.6: every regular language is in Dyn-FO."""

import pytest

from repro.baselines import DFA, alternating_dfa, mod_counter_dfa, substring_dfa
from repro.dynfo import DynFOEngine, ReplayHarness, VerificationError
from repro.logic.structure import Structure
from repro.programs import make_regular_program
from repro.programs.regular import symbol_relation
from repro.workloads import word_edit_script


def _dfa_checker(dfa):
    def check(inputs: Structure, engine: DynFOEngine) -> None:
        word: list = [None] * inputs.n
        for symbol in dfa.alphabet:
            for (p,) in inputs.relation_view(symbol_relation(symbol)):
                word[p] = symbol
        expected = dfa.run(word)
        got = engine.ask("accepted")
        if expected != got:
            raise VerificationError(f"{word}: DFA says {expected}, got {got}")

    return check


DFAS = {
    "mod3": mod_counter_dfa(3),
    "ab_star": alternating_dfa(),
    "contains_aba": substring_dfa(["a", "b", "a"], ["a", "b"]),
}


@pytest.mark.parametrize("name", sorted(DFAS))
def test_randomized_against_dfa(name):
    dfa = DFAS[name]
    program = make_regular_program(dfa, name=name)
    harness = ReplayHarness(program, 9, checkers=[_dfa_checker(dfa)])
    harness.run(word_edit_script(dfa, 9, 90, seed=5))


def test_interval_table_invariant():
    """St(i, i, q, q') must equal the single-position transition."""
    dfa = mod_counter_dfa(2)
    engine = DynFOEngine(make_regular_program(dfa), 6)
    engine.insert(symbol_relation("one"), 3)
    table = engine.query("st")
    assert (3, 3, 0, 1) in table and (3, 3, 1, 0) in table
    assert (2, 2, 0, 0) in table  # empty position = identity


def test_empty_word_accepted_iff_start_accepting():
    accepting_start = mod_counter_dfa(3, residue=0)
    engine = DynFOEngine(make_regular_program(accepting_start), 5)
    assert engine.ask("accepted")
    rejecting_start = mod_counter_dfa(3, residue=1)
    engine = DynFOEngine(make_regular_program(rejecting_start), 5)
    assert not engine.ask("accepted")


def test_universe_must_fit_states():
    dfa = substring_dfa(["a", "b", "a", "b", "a"], ["a", "b"])  # 6 states
    with pytest.raises(ValueError):
        DynFOEngine(make_regular_program(dfa), 4)


def test_gaps_are_skipped():
    """Symbols at scattered positions read left-to-right, epsilon elsewhere."""
    dfa = alternating_dfa()
    engine = DynFOEngine(make_regular_program(dfa), 10)
    engine.insert(symbol_relation("a"), 1)
    engine.insert(symbol_relation("b"), 7)
    assert engine.ask("accepted")  # reads "ab"
    engine.insert(symbol_relation("a"), 4)
    assert not engine.ask("accepted")  # reads "aab"
