"""Example 3.2: PARITY."""

import pytest

from repro.dynfo import DynFOEngine, Insert, check_memoryless, verify_program
from repro.dynfo.oracles import parity_checker
from repro.programs import make_parity_program
from repro.workloads import bitflip_script


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_against_oracle(seed):
    verify_program(
        make_parity_program(), 8, bitflip_script(8, 80, seed), [parity_checker()]
    )


def test_hand_case():
    engine = DynFOEngine(make_parity_program(), 6)
    assert not engine.ask("odd")
    engine.insert("M", 3)
    assert engine.ask("odd")
    engine.insert("M", 3)  # duplicate insert is a no-op
    assert engine.ask("odd")
    engine.delete("M", 0)  # deleting an absent bit is a no-op
    assert engine.ask("odd")
    engine.delete("M", 3)
    assert not engine.ask("odd")


@pytest.mark.parametrize("backend", ["relational", "dense", "naive"])
def test_backends_agree(backend):
    engine = DynFOEngine(make_parity_program(), 6, backend=backend)
    engine.run(bitflip_script(6, 30, seed=7))
    reference = DynFOEngine(make_parity_program(), 6)
    reference.run(bitflip_script(6, 30, seed=7))
    assert engine.aux_snapshot() == reference.aux_snapshot()


def test_memoryless():
    """PARITY's auxiliary structure depends only on the current string."""
    program = make_parity_program()
    check_memoryless(
        program,
        5,
        [Insert("M", (1,)), Insert("M", (2,))],
        [Insert("M", (2,)), Insert("M", (1,)), Insert("M", (2,))],
    )
